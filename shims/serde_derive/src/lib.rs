//! Offline stand-in for [`serde_derive`](https://docs.rs/serde_derive).
//!
//! The build environment has no crate registry, so `syn`/`quote` are not
//! available; this derive hand-parses the item's [`TokenStream`] (attributes,
//! visibility, name, fields/variants) and emits impl blocks of the shim
//! `serde` crate's `Serialize`/`Deserialize` traits as source strings.
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields, tuple structs (newtype-transparent at arity
//!   1), unit structs
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation)
//!
//! Not supported (fails with a compile error rather than silently
//! mis-serializing): generic items, unions, and `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

#[derive(Debug)]
enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip any number of leading `#[...]` / `#![...]` attributes, rejecting
/// `#[serde(...)]` — this shim does not implement serde attributes and
/// honoring them silently would mis-serialize.
fn skip_attributes(tokens: &mut Tokens) -> Result<(), String> {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '!' {
                        tokens.next();
                    }
                }
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let is_serde = matches!(
                        g.stream().into_iter().next(),
                        Some(TokenTree::Ident(i)) if i.to_string() == "serde"
                    );
                    if is_serde {
                        return Err(
                            "shim serde derive does not support #[serde(...)] attributes"
                                .to_string(),
                        );
                    }
                }
            }
            _ => break,
        }
    }
    Ok(())
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &mut Tokens) {
    if let Some(TokenTree::Ident(i)) = tokens.peek() {
        if i.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consume tokens until a top-level `,`, tracking `<`/`>` nesting so commas
/// inside generic types (e.g. `HashMap<String, usize>`) don't split fields.
/// Returns `false` when the stream ended without a comma.
fn skip_until_comma(tokens: &mut Tokens) -> bool {
    let mut angle_depth = 0i32;
    for tree in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

/// Parse the fields of a named-field body group into their names.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens: Tokens = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens)?;
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(name)) => {
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field name, got {other:?}")),
                }
                fields.push(name.to_string());
                if !skip_until_comma(&mut tokens) {
                    break;
                }
            }
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
    Ok(fields)
}

/// Count the fields of a tuple body group (top-level comma-separated types).
fn count_tuple_fields(group: TokenStream) -> Result<usize, String> {
    let mut tokens: Tokens = group.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut tokens)?;
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        if !skip_until_comma(&mut tokens) {
            break;
        }
    }
    Ok(count)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens: Tokens = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens)?;
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let data = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                VariantData::Tuple(count_tuple_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                VariantData::Named(parse_named_fields(g)?)
            }
            _ => VariantData::Unit,
        };
        variants.push(Variant { name, data });
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if !skip_until_comma(&mut tokens) {
            break;
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens: Tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens)?;
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("cannot derive for `{kind}` items"));
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "shim serde derive does not support generics (on `{name}`)"
            ));
        }
    }

    if kind == "enum" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream())?,
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("expected struct body, got {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            "::serde::Serialize::serialize_value(&self.0)".to_string(),
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(::std::vec![{}])", entries.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => format!(
                            "Self::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantData::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::serialize_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "Self::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), {inner})])",
                                binds = binds.join(", ")
                            )
                        }
                        VariantData::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {fields} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Object(::std::vec![{entries}]))])",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(", ")))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_constructor(path: &str, fields: &[String], obj_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__private::field({obj_expr}, {f:?})?"))
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let obj = "__v.as_object().ok_or_else(|| ::serde::Error::custom(\
                       ::std::format!(\"expected object for struct, got {}\", __v.kind())))?";
            (
                name,
                format!(
                    "let __obj = {obj};\n\
                     ::std::result::Result::Ok({})",
                    gen_named_constructor("Self", fields, "__obj")
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            "::std::result::Result::Ok(Self(::serde::Deserialize::deserialize_value(__v)?))"
                .to_string(),
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__items[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\
                     ::std::format!(\"expected array for tuple struct, got {{}}\", __v.kind())))?;\n\
                     if __items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected {arity} elements, got {{}}\", __items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok(Self({}))",
                    items.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (name, "::std::result::Result::Ok(Self)".to_string()),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.data, VariantData::Unit))
                .map(|v| {
                    format!(
                        "{:?} => return ::std::result::Result::Ok(Self::{})",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let build = match &v.data {
                        VariantData::Unit => return None,
                        VariantData::Tuple(1) => format!(
                            "::std::result::Result::Ok(Self::{vn}(\
                             ::serde::Deserialize::deserialize_value(__inner)?))"
                        ),
                        VariantData::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let __items = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for tuple variant\"))?;\n\
                                 if __items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong tuple variant arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok(Self::{vn}({})) }}",
                                items.join(", ")
                            )
                        }
                        VariantData::Named(fields) => {
                            let ctor =
                                gen_named_constructor(&format!("Self::{vn}"), fields, "__obj");
                            format!(
                                "{{ let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for struct variant\"))?;\n\
                                 ::std::result::Result::Ok({ctor}) }}"
                            )
                        }
                    };
                    Some(format!("{vn:?} => return {build}"))
                })
                .collect();
            let mut body = String::new();
            body.push_str(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {\n    match __s {\n",
            );
            for arm in &unit_arms {
                body.push_str("        ");
                body.push_str(arm);
                body.push_str(",\n");
            }
            body.push_str("        _ => {}\n    }\n}\n");
            if !tagged_arms.is_empty() {
                body.push_str(
                    "if let ::std::option::Option::Some([(__tag, __inner)]) = \
                     __v.as_object().map(|__o| __o) {\n    match __tag.as_str() {\n",
                );
                for arm in &tagged_arms {
                    body.push_str("        ");
                    body.push_str(arm);
                    body.push_str(",\n");
                }
                body.push_str("        _ => {}\n    }\n}\n");
            }
            body.push_str(&format!(
                "::std::result::Result::Err(::serde::__private::unknown_variant({name:?}, __v))"
            ));
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("derive(Serialize) codegen error: {e}"))),
        Err(e) => compile_error(&format!("derive(Serialize): {e}")),
    }
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("derive(Deserialize) codegen error: {e}"))),
        Err(e) => compile_error(&format!("derive(Deserialize): {e}")),
    }
}
