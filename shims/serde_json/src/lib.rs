//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json).
//!
//! Renders and parses real JSON over the shim `serde` crate's [`Value`]
//! tree, so `to_string` / `to_string_pretty` / `from_str` round-trip every
//! type that derives the shim's `Serialize`/`Deserialize`.  Floats are
//! written with Rust's shortest-roundtrip formatting (`{:?}`), so `f64`
//! values survive a text round-trip bit-exactly; non-finite floats render as
//! `null` like real serde_json.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (level + 1)),
            " ".repeat(width * level),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest representation that re-parses to
                // the same bits; it always contains `.`, `e`, for non-integral
                // values and plain digits otherwise (e.g. `1.0` for 1.0).
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(key, out);
                out.push_str(colon);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        let got = self.peek()?;
        if got != byte {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, got `{}`",
                byte as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for non-BMP chars.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::new("lone lead surrogate"));
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("truncated surrogate"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error::new("bad surrogate"))?,
                                    16,
                                )
                                .map_err(|_| Error::new("bad surrogate"))?;
                                self.pos += 4;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| Error::new("invalid codepoint"))?);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::I64(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::U64(v))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }
}

/// Parse a JSON string into any shim-`Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::deserialize_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec_of_tuples() {
        let v: Vec<(String, f64, Option<usize>)> = vec![
            ("a b\"c".into(), 0.1, Some(3)),
            ("π ∨ θ".into(), -1.5e-7, None),
        ];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f64, Option<usize>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_text_roundtrip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 12345.6789, -0.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {json}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("1.0trailing").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("-5").is_err());
    }

    #[test]
    fn derived_enum_variants_roundtrip() {
        // Unit variants serialize as bare strings; tuple and struct variants
        // as single-key objects.  The tagged arms regressed once (missing
        // `return` in the generated match), so cover every variant shape.
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Shape {
            Unit,
            Tuple(u32, String),
            Named { x: f64, tag: String },
        }
        let shapes = vec![
            Shape::Unit,
            Shape::Tuple(7, "seven".into()),
            Shape::Named {
                x: 0.5,
                tag: "half".into(),
            },
        ];
        for shape in shapes {
            let json = to_string(&shape).unwrap();
            let back: Shape = from_str(&json).unwrap();
            assert_eq!(back, shape, "{json}");
        }
        assert!(from_str::<Shape>("\"NoSuchVariant\"").is_err());
        assert!(from_str::<Shape>("{\"Tuple\":[1]}").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }
}
