//! Offline stand-in for [`rayon`](https://docs.rs/rayon).
//!
//! The build environment has no network access to a crate registry, so this
//! shim provides rayon's parallel-iterator *API* with **sequential**
//! execution: `into_par_iter()` wraps the ordinary iterator and the adapter
//! methods (`map`, `filter`, `reduce`, …) keep rayon's signatures — notably
//! `reduce(identity, op)`, which differs from `Iterator::reduce` — so call
//! sites compile unchanged.  Swapping in real rayon later is a
//! manifest-level change only.

use std::iter::{Filter, FlatMap, Map};

/// Sequential stand-in for rayon's `ParallelIterator`.
///
/// Wraps a plain [`Iterator`] and exposes rayon-shaped combinators.
pub struct ParIter<I: Iterator>(I);

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> ParIter<Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep items matching the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Map each item to an iterator and flatten.
    pub fn flat_map<T: IntoIterator, F: FnMut(I::Item) -> T>(
        self,
        f: F,
    ) -> ParIter<FlatMap<I, T, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce: fold from a fresh identity value.
    ///
    /// Note the signature difference from [`Iterator::reduce`] — rayon takes
    /// an identity *factory* so each worker can start its own accumulator.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> I::Item
    where
        Id: Fn() -> I::Item,
        Op: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Rayon tuning knob; a no-op here.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Conversion into a (sequential) "parallel" iterator, mirroring rayon's
/// `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Consume `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Borrowing conversion, mirroring rayon's `IntoParallelRefIterator`
/// (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterate `&self` as a [`ParIter`].
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
{
    type Item = <&'data T as IntoIterator>::Item;
    type Iter = <&'data T as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn map_collect_matches_sequential() {
        let out: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn rayon_style_reduce_uses_identity() {
        let set: HashSet<usize> = (0..5usize)
            .into_par_iter()
            .map(|x| HashSet::from([x]))
            .reduce(HashSet::new, |mut a, b| {
                a.extend(b);
                a
            });
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().map(|x| *x).sum();
        assert_eq!(sum, 6);
    }
}
