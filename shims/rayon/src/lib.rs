//! Offline stand-in for [`rayon`](https://docs.rs/rayon) with a real
//! multi-threaded execution engine.
//!
//! The build environment has no network access to a crate registry, so this
//! shim provides rayon's parallel-iterator *API* backed by a chunked
//! work-distribution pool built on [`std::thread::scope`]:
//!
//! * [`IntoParallelIterator::into_par_iter`] materializes the input and
//!   splits it into `current_num_threads()` contiguous chunks, preserving the
//!   input order.
//! * The combinators (`map`, `filter`, `flat_map`, …) build a fused,
//!   monomorphized transform chain that each worker applies to its own chunk
//!   — no locks, no per-item allocation, no work stealing.
//! * Terminal operations join the per-chunk outputs **in chunk order**, so
//!   `collect` is an order-preserving indexed collect and results are
//!   byte-identical regardless of thread count.
//! * `reduce(identity, op)` keeps rayon's semantics: every worker folds its
//!   chunk starting from its **own** `identity()` value, and the per-chunk
//!   results are folded (again starting from `identity()`) in chunk order.
//!
//! The pool size is `RAYON_NUM_THREADS` when set to a positive integer,
//! otherwise [`std::thread::available_parallelism`]; a process-wide override
//! can be installed with [`ThreadPoolBuilder::build_global`].  Parallel
//! operations issued from *inside* a pool worker run sequentially on that
//! worker, so nesting never multiplies the thread count (real rayon gets the
//! same bound from its single shared pool).
//!
//! Closures must be `Fn + Sync` (not `FnMut`) exactly as with real rayon, so
//! production call sites compile unchanged against the real crate and
//! swapping it in is a manifest-level change.  The one deliberate behavioral
//! divergence is that [`ThreadPoolBuilder::build_global`] may be called
//! repeatedly (see its docs): code that re-sizes the pool mid-process — the
//! cross-thread determinism tests and the `bench_smoke` binary — would need
//! scoped pools under real rayon.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide thread-count override installed by
/// [`ThreadPoolBuilder::build_global`]; `0` means "no override".
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `RAYON_NUM_THREADS`, read once per process (like real rayon, which sizes
/// its global pool a single time) so hot paths never touch the process
/// environment lock.
static ENV_NUM_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// `true` while the current thread is a pool worker.  Nested parallel
    /// operations detect this and run sequentially on the worker, so total
    /// thread count stays bounded by the configured pool size instead of
    /// multiplying at every nesting level (real rayon gets the same effect
    /// by scheduling nested work onto its one fixed pool).
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The number of worker threads parallel iterators will use.
///
/// Resolution order: the [`ThreadPoolBuilder::build_global`] override, then
/// the `RAYON_NUM_THREADS` environment variable (a positive integer, read
/// once per process; `0` or garbage falls through, like real rayon), then
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    let global = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    let env = *ENV_NUM_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    if let Some(n) = env {
        return n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Mirror of rayon's global-pool builder.
///
/// Only the thread count is configurable.  Unlike real rayon — whose global
/// pool can be built once — calling [`Self::build_global`] repeatedly
/// *replaces* the override (and `num_threads(0)` clears it, falling back to
/// the environment); this divergence is deliberate so tests and benchmarks
/// can compare thread counts within one process.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads (`0` = derive from the environment).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install this configuration as the process-wide pool. Never fails in
    /// the shim; the `Result` matches real rayon's signature.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Nanoseconds of CPU time consumed by worker threads inside parallel
/// regions since the last [`reset_engine_stats`] (the "work").
static PARALLEL_WORK_NANOS: AtomicU64 = AtomicU64::new(0);
/// Nanoseconds on the critical path of those regions: per region, the CPU
/// time of its slowest chunk (the "span").
static PARALLEL_SPAN_NANOS: AtomicU64 = AtomicU64::new(0);
/// Number of genuinely parallel regions (more than one chunk) executed.
static PARALLEL_REGIONS: AtomicU64 = AtomicU64::new(0);

/// CPU time consumed by the calling thread, in nanoseconds.
///
/// Uses `CLOCK_THREAD_CPUTIME_ID`, so the measurement is correct even when
/// more threads run than the host has cores and the workers timeslice — the
/// situation where wall-clock chunk timings become meaningless.  Falls back
/// to a monotonic wall clock on non-Linux targets.
fn thread_cpu_nanos() -> u64 {
    #[cfg(target_os = "linux")]
    {
        clock_nanos(3 /* CLOCK_THREAD_CPUTIME_ID */)
    }
    #[cfg(not(target_os = "linux"))]
    {
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// CPU time consumed by the whole process, in nanoseconds.
///
/// Together with [`engine_stats`] this lets a benchmark split a run into
/// "serial CPU" (total minus parallel work) and model the wall time a
/// machine with one core per worker would achieve (serial plus span).
pub fn process_cpu_nanos() -> u64 {
    #[cfg(target_os = "linux")]
    {
        clock_nanos(2 /* CLOCK_PROCESS_CPUTIME_ID */)
    }
    #[cfg(not(target_os = "linux"))]
    {
        thread_cpu_nanos()
    }
}

#[cfg(target_os = "linux")]
fn clock_nanos(clock_id: i32) -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable `timespec`-layout struct and the
    // clock ids used are always available on Linux.
    let rc = unsafe { clock_gettime(clock_id, &mut ts) };
    if rc != 0 {
        return 0;
    }
    (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
}

/// Work/span counters of the execution engine's parallel regions.
///
/// For every parallel region (a terminal operation that actually split its
/// input into more than one chunk), the engine records each worker's **CPU
/// time** over its chunk: the region's *work* is the sum, its *span* the
/// maximum.  Accumulated over a run,
///
/// * `parallel_work_seconds` is the CPU time that was eligible to run
///   concurrently,
/// * `parallel_span_seconds` is the part of it on the critical path — what
///   a host with (at least) one core per worker would have to spend walls
///   clock on, and
/// * `total_cpu - work + span` models the run's wall time on such a host
///   (see `bench_smoke`'s `effective_speedup`).
///
/// CPU clocks make the numbers honest on oversubscribed hosts: when 4
/// workers timeslice one core, wall-clock chunk timings would report a 4×
/// "speedup" that the hardware never delivered, while CPU timings report
/// the true work distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Total CPU seconds spent inside parallel-region chunks.
    pub parallel_work_seconds: f64,
    /// CPU seconds on the critical path (per region: the slowest chunk).
    pub parallel_span_seconds: f64,
    /// Number of parallel regions executed.
    pub parallel_regions: u64,
}

/// Read the accumulated [`EngineStats`].
pub fn engine_stats() -> EngineStats {
    EngineStats {
        parallel_work_seconds: PARALLEL_WORK_NANOS.load(Ordering::Relaxed) as f64 / 1e9,
        parallel_span_seconds: PARALLEL_SPAN_NANOS.load(Ordering::Relaxed) as f64 / 1e9,
        parallel_regions: PARALLEL_REGIONS.load(Ordering::Relaxed),
    }
}

/// Zero the engine counters (start of a measured run).
pub fn reset_engine_stats() {
    PARALLEL_WORK_NANOS.store(0, Ordering::Relaxed);
    PARALLEL_SPAN_NANOS.store(0, Ordering::Relaxed);
    PARALLEL_REGIONS.store(0, Ordering::Relaxed);
}

/// Error type of [`ThreadPoolBuilder::build_global`] (never produced by the
/// shim, present for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool could not be configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A fused chain of item transforms applied by each worker to its chunk.
///
/// `each` feeds the outputs produced by one input item into `sink`, in
/// order; combinator structs nest the previous chain so the whole pipeline
/// monomorphizes into one call tree with no intermediate collections.
pub trait Transform<In>: Sync {
    /// Output item type of the full chain.
    type Out;
    /// Apply the chain to `item`, pushing each output into `sink`.
    fn each(&self, item: In, sink: &mut impl FnMut(Self::Out));
}

/// The identity transform at the root of every chain.
pub struct Ident;

impl<T> Transform<T> for Ident {
    type Out = T;
    fn each(&self, item: T, sink: &mut impl FnMut(T)) {
        sink(item);
    }
}

/// The [`ParIter::map`] stage.
pub struct MapT<P, F> {
    prev: P,
    f: F,
}

impl<In, P, O, F> Transform<In> for MapT<P, F>
where
    P: Transform<In>,
    F: Fn(P::Out) -> O + Sync,
{
    type Out = O;
    fn each(&self, item: In, sink: &mut impl FnMut(O)) {
        self.prev.each(item, &mut |x| sink((self.f)(x)));
    }
}

/// The [`ParIter::filter`] stage.
pub struct FilterT<P, F> {
    prev: P,
    f: F,
}

impl<In, P, F> Transform<In> for FilterT<P, F>
where
    P: Transform<In>,
    F: Fn(&P::Out) -> bool + Sync,
{
    type Out = P::Out;
    fn each(&self, item: In, sink: &mut impl FnMut(P::Out)) {
        self.prev.each(item, &mut |x| {
            if (self.f)(&x) {
                sink(x);
            }
        });
    }
}

/// The [`ParIter::flat_map`] stage.
pub struct FlatMapT<P, F> {
    prev: P,
    f: F,
}

impl<In, P, It, F> Transform<In> for FlatMapT<P, F>
where
    P: Transform<In>,
    It: IntoIterator,
    F: Fn(P::Out) -> It + Sync,
{
    type Out = It::Item;
    fn each(&self, item: In, sink: &mut impl FnMut(It::Item)) {
        self.prev.each(item, &mut |x| {
            for y in (self.f)(x) {
                sink(y);
            }
        });
    }
}

/// A parallel iterator: a materialized input plus a fused transform chain.
///
/// Construction is cheap and lazy — nothing runs until a terminal operation
/// (`collect`, `for_each`, `reduce`, `sum`, `count`) drives the chunks
/// through the pool.
pub struct ParIter<In, T> {
    base: Vec<In>,
    transform: T,
    min_len: usize,
}

impl<In, T: Transform<In>> ParIter<In, T> {
    /// Map each item.
    pub fn map<O, F: Fn(T::Out) -> O + Sync>(self, f: F) -> ParIter<In, MapT<T, F>> {
        ParIter {
            base: self.base,
            transform: MapT {
                prev: self.transform,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Keep items matching the predicate.
    pub fn filter<F: Fn(&T::Out) -> bool + Sync>(self, f: F) -> ParIter<In, FilterT<T, F>> {
        ParIter {
            base: self.base,
            transform: FilterT {
                prev: self.transform,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Map each item to an iterator and flatten.
    pub fn flat_map<It: IntoIterator, F: Fn(T::Out) -> It + Sync>(
        self,
        f: F,
    ) -> ParIter<In, FlatMapT<T, F>> {
        ParIter {
            base: self.base,
            transform: FlatMapT {
                prev: self.transform,
                f,
            },
            min_len: self.min_len,
        }
    }

    /// Set a lower bound on the number of *input* items a worker chunk may
    /// hold, limiting how finely the input is split.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }
}

impl<In: Send, T: Transform<In>> ParIter<In, T>
where
    T::Out: Send,
{
    /// Split the input into order-preserving chunks and run `worker` on each,
    /// in parallel when more than one chunk results. Returns the per-chunk
    /// results **in chunk order**.
    fn drive<R, W>(self, worker: W) -> Vec<R>
    where
        R: Send,
        W: Fn(Vec<In>, &T) -> R + Sync,
    {
        let Self {
            base,
            transform,
            min_len,
        } = self;
        let n = base.len();
        let threads = current_num_threads();
        let chunk_len = n.div_ceil(threads.max(1)).max(min_len).max(1);
        // A parallel operation issued from inside a pool worker runs
        // sequentially on that worker: the outermost operation already owns
        // the full thread budget, and multiplying threads per nesting level
        // would oversubscribe the machine (and risk spawn failures).
        let nested = IN_POOL_WORKER.with(Cell::get);
        if nested || threads <= 1 || chunk_len >= n {
            if n == 0 {
                return Vec::new();
            }
            return vec![worker(base, &transform)];
        }
        let mut chunks: Vec<Vec<In>> = Vec::with_capacity(threads);
        let mut it = base.into_iter();
        loop {
            let chunk: Vec<In> = it.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let transform = &transform;
        let worker = &worker;
        let (results, chunk_cpu_nanos): (Vec<R>, Vec<u64>) = std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    s.spawn(move || {
                        IN_POOL_WORKER.with(|flag| flag.set(true));
                        let cpu_start = thread_cpu_nanos();
                        let out = worker(chunk, transform);
                        (out, thread_cpu_nanos().saturating_sub(cpu_start))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .unzip()
        });
        PARALLEL_WORK_NANOS.fetch_add(chunk_cpu_nanos.iter().sum::<u64>(), Ordering::Relaxed);
        PARALLEL_SPAN_NANOS.fetch_add(
            chunk_cpu_nanos.iter().copied().max().unwrap_or(0),
            Ordering::Relaxed,
        );
        PARALLEL_REGIONS.fetch_add(1, Ordering::Relaxed);
        results
    }

    /// Evaluate the chain over every chunk, returning per-chunk output
    /// vectors in chunk order.
    fn run_chunks(self) -> Vec<Vec<T::Out>> {
        self.drive(|chunk, transform| {
            let mut out = Vec::with_capacity(chunk.len());
            for item in chunk {
                transform.each(item, &mut |x| out.push(x));
            }
            out
        })
    }

    /// Run `f` on every item.
    pub fn for_each<F: Fn(T::Out) + Sync>(self, f: F) {
        let f = &f;
        self.drive(|chunk, transform| {
            for item in chunk {
                transform.each(item, &mut |x| f(x));
            }
        });
    }

    /// Collect into any `FromIterator` container, preserving input order
    /// regardless of thread count.
    pub fn collect<C: FromIterator<T::Out>>(self) -> C {
        self.run_chunks().into_iter().flatten().collect()
    }

    /// Collect into an existing `Vec` (cleared first), preserving input
    /// order — rayon's `collect_into_vec`.  Lets streaming callers reuse one
    /// batch buffer's allocation across many parallel rounds.
    pub fn collect_into_vec(self, target: &mut Vec<T::Out>) {
        target.clear();
        for chunk in self.run_chunks() {
            target.extend(chunk);
        }
    }

    /// Rayon-style reduce: every worker folds its chunk from a **fresh**
    /// `identity()` value, and the ordered per-chunk results are folded from
    /// another `identity()`. Deterministic for associative `op` (the chunk
    /// boundaries — hence the grouping — depend on the thread count, but
    /// element order never changes).
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T::Out
    where
        Id: Fn() -> T::Out + Sync,
        Op: Fn(T::Out, T::Out) -> T::Out + Sync,
    {
        let identity = &identity;
        let op = &op;
        self.drive(|chunk, transform| {
            let mut acc = identity();
            for item in chunk {
                let mut slot = Some(acc);
                transform.each(item, &mut |x| {
                    let prev = slot.take().expect("accumulator present");
                    slot = Some(op(prev, x));
                });
                acc = slot.take().expect("accumulator present");
            }
            acc
        })
        .into_iter()
        .fold(identity(), op)
    }

    /// Sum the items (the transform chain runs in parallel; the final
    /// summation of the ordered outputs is sequential, keeping `Sum`'s exact
    /// sequential semantics).
    pub fn sum<S: std::iter::Sum<T::Out>>(self) -> S {
        self.run_chunks().into_iter().flatten().sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.drive(|chunk, transform| {
            let mut n = 0usize;
            for item in chunk {
                transform.each(item, &mut |_| n += 1);
            }
            n
        })
        .into_iter()
        .sum()
    }
}

/// Conversion into a parallel iterator, mirroring rayon's
/// `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;

    /// Consume `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item, Ident>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;

    fn into_par_iter(self) -> ParIter<Self::Item, Ident> {
        ParIter {
            base: self.into_iter().collect(),
            transform: Ident,
            min_len: 1,
        }
    }
}

/// Borrowing conversion, mirroring rayon's `IntoParallelRefIterator`
/// (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item;

    /// Iterate `&self` as a [`ParIter`].
    fn par_iter(&'data self) -> ParIter<Self::Item, Ident>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
{
    type Item = <&'data T as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Item, Ident> {
        ParIter {
            base: self.into_iter().collect(),
            transform: Ident,
            min_len: 1,
        }
    }
}

// The blanket impl above only covers `Sized` types; slices get their own.
impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T, Ident> {
        ParIter {
            base: self.iter().collect(),
            transform: Ident,
            min_len: 1,
        }
    }
}

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, ThreadPoolBuilder};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// `build_global` mutates process state; tests that rely on a specific
    /// thread count serialize on this lock and restore the default after.
    static POOL_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = POOL_LOCK.lock().unwrap();
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .unwrap();
        let out = f();
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        out
    }

    #[test]
    fn map_collect_matches_sequential() {
        let out: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_preserves_order_across_thread_counts() {
        let expect: Vec<usize> = (0..1000).map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<usize> = with_threads(threads, || {
                (0..1000usize).into_par_iter().map(|x| x * 3 + 1).collect()
            });
            assert_eq!(got, expect, "order broke at {threads} threads");
        }
    }

    #[test]
    fn filter_and_flat_map_compose() {
        for threads in [1, 4] {
            let got: Vec<usize> = with_threads(threads, || {
                (0..100usize)
                    .into_par_iter()
                    .filter(|x| x % 10 == 0)
                    .flat_map(|x| [x, x + 1])
                    .map(|x| x + 100)
                    .collect()
            });
            let expect: Vec<usize> = (0..100)
                .filter(|x| x % 10 == 0)
                .flat_map(|x| [x, x + 1])
                .map(|x| x + 100)
                .collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn rayon_style_reduce_uses_identity() {
        let set: HashSet<usize> = (0..5usize)
            .into_par_iter()
            .map(|x| HashSet::from([x]))
            .reduce(HashSet::new, |mut a, b| {
                a.extend(b);
                a
            });
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn reduce_calls_identity_once_per_chunk() {
        let calls = AtomicUsize::new(0);
        let total: usize = with_threads(4, || {
            (1..=100usize).into_par_iter().reduce(
                || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    0
                },
                |a, b| a + b,
            )
        });
        assert_eq!(total, 5050);
        // 4 worker chunks each start from their own identity, plus one more
        // for the final cross-chunk fold.
        assert_eq!(calls.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn reduce_of_empty_input_returns_identity() {
        let out = Vec::<i32>::new()
            .into_par_iter()
            .reduce(|| -7, |a, b| a + b);
        assert_eq!(out, -7);
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().map(|x| *x).sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn count_and_for_each_run_on_all_items() {
        let n = with_threads(3, || {
            (0..97usize).into_par_iter().filter(|x| x % 2 == 0).count()
        });
        assert_eq!(n, 49);
        let seen = AtomicUsize::new(0);
        with_threads(3, || {
            (0..97usize).into_par_iter().for_each(|_| {
                seen.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert_eq!(seen.load(Ordering::SeqCst), 97);
    }

    #[test]
    fn with_min_len_limits_splitting() {
        let calls = AtomicUsize::new(0);
        with_threads(8, || {
            let _: usize = (1..=10usize).into_par_iter().with_min_len(10).reduce(
                || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    0
                },
                |a, b| a + b,
            );
        });
        // A single chunk (min_len covers the whole input) folds sequentially:
        // one worker identity plus the final cross-chunk fold's identity.
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn build_global_overrides_and_clears() {
        let _guard = POOL_LOCK.lock().unwrap();
        ThreadPoolBuilder::new()
            .num_threads(7)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 7);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn nested_parallelism_stays_on_the_worker_thread() {
        // An inner parallel operation issued from a pool worker must not
        // spawn further threads: every inner item should be evaluated on the
        // worker thread that owns the outer chunk.
        let rows: Vec<Vec<(std::thread::ThreadId, std::thread::ThreadId)>> =
            with_threads(4, || {
                (0..8usize)
                    .into_par_iter()
                    .map(|_| {
                        let outer = std::thread::current().id();
                        (0..16usize)
                            .into_par_iter()
                            .map(move |_| (outer, std::thread::current().id()))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            });
        for row in &rows {
            assert_eq!(row.len(), 16);
            for &(outer, inner) in row {
                assert_eq!(outer, inner, "nested work escaped its pool worker");
            }
        }
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        let ids: HashSet<std::thread::ThreadId> = with_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|_| std::thread::current().id())
                .collect()
        });
        assert!(ids.len() > 1, "expected work on >1 thread, got {ids:?}");
    }
}
