//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no network access to a crate registry, so this
//! shim implements the serde surface the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits, `#[derive(Serialize, Deserialize)]` (re-exported
//! from the sibling `serde_derive` shim, a hand-rolled proc macro), and impls
//! for the std types that appear in derived structs.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! self-describing [`Value`] tree — `Serialize` lowers to a `Value`,
//! `Deserialize` lifts from one.  The `serde_json` shim renders and parses
//! that tree, so `to_string`/`from_str` round-trips work for every derived
//! type.  The derive output follows serde's externally-tagged JSON data
//! model (unit enum variants as strings, field maps for structs), so files
//! written by this shim stay readable by real serde later.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key-value map with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object (field list), if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::I64(v as i64) } else { Value::U64(v) }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let out = match value {
                    Value::I64(v) => <$t>::try_from(*v).ok(),
                    Value::U64(v) => <$t>::try_from(*v).ok(),
                    // Tolerate floats with an exact integer value, as real
                    // serde_json does for `1.0 as u64`-style inputs.
                    Value::F64(v) if v.fract() == 0.0 => <$t>::try_from(*v as i64).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error::custom(format!(
                        "expected {}, got {}", stringify!($t), value.kind()
                    ))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! de_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(v) => Ok(*v as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    other => Err(Error::custom(format!(
                        "expected {}, got {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}
de_float!(f32, f64);

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {}", value.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| V::deserialize_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| V::deserialize_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array, got {}", value.kind()))
                })?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {}, got array of {}", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

/// Support code for the derive macros; not part of the public API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Look up and deserialize a struct field by name.
    ///
    /// Missing keys deserialize from `Null`, so `Option` fields tolerate
    /// omission the way real serde's do.
    pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
        let value = fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null);
        T::deserialize_value(value).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
    }

    /// Error for an unknown enum variant name.
    pub fn unknown_variant(enum_name: &str, got: &Value) -> Error {
        match got.as_str() {
            Some(s) => Error::custom(format!("unknown variant `{s}` for enum {enum_name}")),
            None => Error::custom(format!(
                "expected variant of {enum_name}, got {}",
                got.kind()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_through_null() {
        let v: Option<usize> = None;
        assert_eq!(v.serialize_value(), Value::Null);
        assert_eq!(
            Option::<usize>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        assert_eq!(
            Option::<usize>::deserialize_value(&Value::I64(4)).unwrap(),
            Some(4)
        );
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 0.5), ("b".into(), 1.5)];
        let tree = v.serialize_value();
        let back = Vec::<(String, f64)>::deserialize_value(&tree).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn int_narrowing_is_checked() {
        assert!(u8::deserialize_value(&Value::I64(300)).is_err());
        assert_eq!(u8::deserialize_value(&Value::I64(255)).unwrap(), 255);
        assert!(usize::deserialize_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn missing_field_is_null_for_option() {
        let fields = vec![("present".to_string(), Value::I64(1))];
        let missing: Option<usize> = __private::field(&fields, "absent").unwrap();
        assert_eq!(missing, None);
        let present: usize = __private::field(&fields, "present").unwrap();
        assert_eq!(present, 1);
        assert!(__private::field::<usize>(&fields, "absent").is_err());
    }
}
