//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8).
//!
//! The build environment for this workspace has no network access to a crate
//! registry, so the external crates the code depends on are vendored as
//! minimal, API-compatible shims under `shims/`.  This crate reimplements the
//! slice of the rand 0.8 API the workspace actually uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`choose`, `shuffle`).
//!
//! `SmallRng` is a xoshiro256** generator (the same family real rand 0.8
//! uses on 64-bit targets), seeded through SplitMix64 exactly like
//! `rand_core` does, so statistical quality is adequate for the synthetic
//! data generation and ML baselines in this repo.  Sequences are **not**
//! bit-compatible with the real crate; nothing in the workspace depends on
//! the exact streams, only on determinism for a fixed seed.

/// The core of a random number generator: a source of random `u32`/`u64`.
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Internal SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not be seeded with all zeros.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// range, backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample a value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, like real rand.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly between two bounds.
///
/// Mirrors real rand's `SampleUniform` so that [`SampleRange`] can be a
/// single blanket impl per range kind — that shape is what lets type
/// inference pin the integer type in expressions like
/// `b'A' + rng.gen_range(0..26)`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample from `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive && low == <$t>::MIN && high == <$t>::MAX {
                    return Standard::sample(rng);
                }
                let span = (high as i128 - low as i128 + inclusive as i128) as u128;
                assert!(span > 0, "cannot sample empty range");
                // Multiply-shift bounded sampling; bias is < 2^-64, immaterial
                // for the synthetic workloads in this repo.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty, matching real rand's behavior.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Extension methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly over its "standard" range
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range; panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly choose one element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    fn index_below<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (((rng.next_u64() as u128).wrapping_mul(n as u128)) >> 64) as usize
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index_below(rng, self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, index_below(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(11);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
