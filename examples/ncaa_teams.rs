//! A realistic single-column scenario on generated benchmark data: join a
//! query table of messy NCAA-style team-season names against a reference
//! table, evaluate against ground truth, and compare with the Excel-style
//! baseline — a miniature version of the paper's Table 2 protocol.
//!
//! ```bash
//! cargo run --release --example ncaa_teams
//! ```

use autofj::baselines::{ExcelLike, UnsupervisedMatcher};
use autofj::core::{AutoFjOptions, AutoFuzzyJoin};
use autofj::datagen::{benchmark_specs, BenchmarkScale};
use autofj::eval::{adjusted_recall, evaluate_assignment, upper_bound_recall};
use autofj::text::JoinFunctionSpace;

fn main() {
    // "NCAATeamSeason" is task #27 of the generated 50-task benchmark.
    let spec = &benchmark_specs(BenchmarkScale::Tiny)[27];
    let task = spec.generate();
    println!(
        "Task {}: |L| = {}, |R| = {}, ground-truth matches = {}",
        task.name,
        task.left.len(),
        task.right.len(),
        task.num_matches()
    );

    let space = JoinFunctionSpace::reduced24();
    let joiner = AutoFuzzyJoin::builder()
        .space(space.clone())
        .options(AutoFjOptions::default())
        .build();
    let result = joiner.join_values(&task.left, &task.right);
    let quality = evaluate_assignment(&result.assignment, &task.ground_truth);

    println!("\nAutoFJ program: {}", result.program);
    println!(
        "AutoFJ:  precision = {:.3}  recall = {:.3}  (estimated precision = {:.3})",
        quality.precision, quality.recall_relative, result.estimated_precision
    );

    // Compare with the strongest unsupervised baseline at the same precision.
    let excel_preds = ExcelLike::default().predict(&task.left, &task.right);
    let excel = adjusted_recall(&excel_preds, &task.ground_truth, quality.precision);
    println!(
        "Excel:   precision = {:.3}  adjusted recall = {:.3}",
        excel.precision, excel.recall_relative
    );

    let ubr = upper_bound_recall(&task.left, &task.right, &space, &task.ground_truth);
    println!("Upper bound of recall over this configuration space = {ubr:.3}");

    // Show a few example joins.
    println!("\nSample joins:");
    for pair in result.pairs.iter().take(5) {
        println!(
            "  {:50} -> {:50} (config #{}, est. precision {:.2})",
            task.right[pair.right],
            task.left[pair.left],
            pair.config_index,
            pair.estimated_precision
        );
    }
}
