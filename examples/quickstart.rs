//! Quickstart: auto-program a fuzzy join between two small name tables.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use autofj::core::{AutoFuzzyJoin, Table};
use autofj::text::JoinFunctionSpace;

fn main() {
    // The reference table L: a curated list with no duplicates.
    let reference = Table::from_strings(
        "ncaa-teams",
        [
            "2007 LSU Tigers football team",
            "2007 LSU Tigers baseball team",
            "2008 LSU Tigers football team",
            "2007 Wisconsin Badgers football team",
            "2008 Wisconsin Badgers football team",
            "2007 Oregon Ducks football team",
            "2008 Oregon Ducks football team",
            "2007 Alabama Crimson Tide football team",
            "2008 Alabama Crimson Tide football team",
            "2007 Michigan Wolverines football team",
        ],
    );
    // The query table R: messy variants that need to be matched against L.
    let queries = Table::from_strings(
        "queries",
        [
            "2007 LSU Tigers football",                 // dropped token
            "the 2008 Wisconsin Badgers football team", // extra token
            "2007 Oregon Ducks Football Team (NCAA)",   // casing + qualifier
            "2008 Alabama Crimson Tide footbal team",   // typo
            "1995 Harvard Crimson rowing team",         // no counterpart in L
        ],
    );

    // Build the joiner: precision target 0.9, default 140-function space.
    let joiner = AutoFuzzyJoin::builder()
        .precision_target(0.9)
        .space(JoinFunctionSpace::full())
        .build();

    let result = joiner.join(&reference, &queries);

    println!("Auto-programmed join program:\n  {}\n", result.program);
    println!(
        "Estimated precision = {:.3}, estimated recall (expected true positives) = {:.1}\n",
        result.precision_estimate(),
        result.recall_estimate()
    );
    println!("Joins:");
    for (r, assignment) in result.assignment.iter().enumerate() {
        let rhs = &queries.values()[r];
        match assignment {
            Some(l) => println!("  {:55} -> {}", rhs, reference.values()[*l]),
            None => println!("  {:55} -> ⊥ (no match)", rhs),
        }
    }
}
