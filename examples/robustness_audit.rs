//! Robustness audit: stress a single benchmark task the way Figure 6 does —
//! irrelevant records in R, a completely unrelated R, and a sparsified L —
//! and watch how Auto-FuzzyJoin's precision holds up.
//!
//! ```bash
//! cargo run --release --example robustness_audit
//! ```

use autofj::core::{AutoFjOptions, AutoFuzzyJoin};
use autofj::datagen::adversarial::{add_irrelevant_records, sparsify_reference, unrelated_pair};
use autofj::datagen::{benchmark_specs, BenchmarkScale};
use autofj::eval::evaluate_assignment;
use autofj::text::JoinFunctionSpace;

fn main() {
    let specs = benchmark_specs(BenchmarkScale::Tiny);
    let base = specs[36].generate(); // ShoppingMall
    let donor = specs[10].generate(); // Drug (unrelated domain)
    let joiner = AutoFuzzyJoin::builder()
        .space(JoinFunctionSpace::reduced24())
        .options(AutoFjOptions::default())
        .build();

    let audit = |name: &str, task: &autofj::datagen::SingleColumnTask| {
        let result = joiner.join_values(&task.left, &task.right);
        let q = evaluate_assignment(&result.assignment, &task.ground_truth);
        println!(
            "{name:32} |L|={:4} |R|={:4}  joined={:4}  precision={:.3}  recall={:.3}",
            task.left.len(),
            task.right.len(),
            result.num_joined(),
            q.precision,
            q.recall_relative
        );
    };

    println!("Robustness audit on task `{}`\n", base.name);
    audit("baseline", &base);
    for frac in [0.2, 0.5, 0.8] {
        let noisy = add_irrelevant_records(&base, &donor.left, frac, 7);
        audit(
            &format!("+{:.0}% irrelevant R records", frac * 100.0),
            &noisy,
        );
    }
    for frac in [0.2, 0.4] {
        let sparse = sparsify_reference(&base, frac, 11);
        audit(&format!("-{:.0}% of L removed", frac * 100.0), &sparse);
    }
    let zero = unrelated_pair(&base, &donor);
    let result = joiner.join_values(&zero.left, &zero.right);
    println!(
        "{:32} |L|={:4} |R|={:4}  joined={:4}  (every join here is a false positive)",
        "unrelated L and R",
        zero.left.len(),
        zero.right.len(),
        result.num_joined()
    );
}
