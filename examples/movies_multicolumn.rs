//! Multi-column fuzzy join: the algorithm discovers which columns matter
//! (and how much) on a movie-style dataset with informative, secondary and
//! irrelevant columns — the scenario of Figure 5 and Table 4(a).
//!
//! ```bash
//! cargo run --release --example movies_multicolumn
//! ```

use autofj::core::{AutoFjOptions, AutoFuzzyJoin};
use autofj::datagen::MultiColumnDataset;
use autofj::eval::evaluate_assignment;
use autofj::text::JoinFunctionSpace;

fn main() {
    // A synthetic analog of the RottenTomatoes–IMDB movie dataset
    // (10 attributes; only "name" and "director" genuinely matter).
    let task = MultiColumnDataset::RI.generate(0.08, 42);
    println!(
        "Dataset {} ({}): {} columns, |L| = {}, |R| = {}",
        task.name,
        task.domain,
        task.left.num_columns(),
        task.left.len(),
        task.right.len()
    );
    println!(
        "Columns: {:?}",
        task.left
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
    );

    let joiner = AutoFuzzyJoin::builder()
        .space(JoinFunctionSpace::reduced24())
        .options(AutoFjOptions {
            num_thresholds: 25,
            ..AutoFjOptions::default()
        })
        .build();
    let result = joiner.join(&task.left, &task.right);
    let quality = evaluate_assignment(&result.assignment, &task.ground_truth);

    println!("\nSelected columns and weights:");
    for (c, w) in result
        .program
        .columns
        .iter()
        .zip(&result.program.column_weights)
    {
        println!("  {c:20} weight {w:.2}");
    }
    println!("\nJoin program: {}", result.program);
    println!(
        "precision = {:.3}  recall = {:.3}  joined = {}/{}",
        quality.precision,
        quality.recall_relative,
        result.num_joined(),
        task.right.len()
    );
}
