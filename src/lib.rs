//! # autofj — Auto-FuzzyJoin for Rust
//!
//! Umbrella crate re-exporting the Auto-FuzzyJoin workspace: an unsupervised
//! framework that automatically programs fuzzy similarity joins between a
//! reference table `L` and a query table `R` so that a user-specified
//! precision target is met while recall is maximized, following
//! *"Auto-FuzzyJoin: Auto-Program Fuzzy Similarity Joins Without Labeled
//! Examples"* (SIGMOD 2021).
//!
//! ## Quick start
//!
//! ```
//! use autofj::core::{AutoFuzzyJoin, Table};
//!
//! let left = Table::from_strings(
//!     "teams",
//!     ["2007 LSU Tigers football team", "2008 LSU Tigers football team",
//!      "2007 Wisconsin Badgers football team", "2008 Wisconsin Badgers football team"],
//! );
//! let right = Table::from_strings(
//!     "queries",
//!     ["2007 LSU Tigers football", "2008 Wisconsin Badgers team (football)"],
//! );
//!
//! let result = AutoFuzzyJoin::builder()
//!     .precision_target(0.9)
//!     .build()
//!     .join(&left, &right);
//! assert!(result.precision_estimate() >= 0.0);
//! ```

pub use autofj_baselines as baselines;
pub use autofj_block as block;
pub use autofj_core as core;
pub use autofj_datagen as datagen;
pub use autofj_eval as eval;
pub use autofj_serve as serve;
pub use autofj_store as store;
pub use autofj_text as text;

/// Crate version of the umbrella package.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
