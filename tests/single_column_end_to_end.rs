//! Cross-crate integration tests: generated benchmark data → blocking →
//! AutoFJ → evaluation, on single-column tasks.

use autofj::core::{AutoFjOptions, AutoFuzzyJoin};
use autofj::datagen::{benchmark_specs, BenchmarkScale};
use autofj::eval::{evaluate_assignment, upper_bound_recall};
use autofj::text::JoinFunctionSpace;

fn joiner() -> AutoFuzzyJoin {
    AutoFuzzyJoin::builder()
        .space(JoinFunctionSpace::reduced24())
        .options(AutoFjOptions {
            num_thresholds: 25,
            ..AutoFjOptions::default()
        })
        .build()
}

#[test]
fn autofj_meets_its_precision_target_on_generated_tasks() {
    let specs = benchmark_specs(BenchmarkScale::Tiny);
    // A handful of structurally different domains.
    let mut checked = 0;
    for idx in [4, 19, 27, 36, 45] {
        let task = specs[idx].generate();
        let result = joiner().join_values(&task.left, &task.right);
        if result.num_joined() < 5 {
            continue; // too few joins for a meaningful precision check
        }
        let q = evaluate_assignment(&result.assignment, &task.ground_truth);
        // The estimator promises 0.9 in expectation; allow synthetic-data
        // slack but catch gross violations.
        assert!(
            q.precision >= 0.7,
            "{}: actual precision {:.3} too far below the 0.9 target",
            task.name,
            q.precision
        );
        checked += 1;
    }
    assert!(checked >= 3, "not enough tasks produced joins to check");
}

#[test]
fn autofj_recall_is_a_reasonable_fraction_of_the_upper_bound() {
    let task = benchmark_specs(BenchmarkScale::Tiny)[36].generate(); // ShoppingMall
    let space = JoinFunctionSpace::reduced24();
    let result = joiner().join_values(&task.left, &task.right);
    let q = evaluate_assignment(&result.assignment, &task.ground_truth);
    let ubr = upper_bound_recall(&task.left, &task.right, &space, &task.ground_truth);
    assert!(ubr > 0.5, "upper bound suspiciously low: {ubr}");
    assert!(
        q.recall_relative >= 0.25 * ubr,
        "recall {:.3} is too small a fraction of the upper bound {:.3}",
        q.recall_relative,
        ubr
    );
}

#[test]
fn join_program_is_explainable_and_consistent_with_pairs() {
    let task = benchmark_specs(BenchmarkScale::Tiny)[19].generate(); // HistoricBuilding
    let result = joiner().join_values(&task.left, &task.right);
    if result.num_joined() == 0 {
        return;
    }
    // The rendered program mentions every configuration that produced a join.
    let description = result.program.describe();
    assert!(description.contains('≤'));
    for pair in &result.pairs {
        assert!(pair.config_index < result.program.configs.len());
        assert!(pair.left < task.left.len());
        assert!(pair.right < task.right.len());
        assert!(pair.estimated_precision > 0.0 && pair.estimated_precision <= 1.0);
        // Assignment and pair list agree.
        assert_eq!(result.assignment[pair.right], Some(pair.left));
    }
}

#[test]
fn lower_precision_target_never_reduces_recall() {
    let task = benchmark_specs(BenchmarkScale::Tiny)[45].generate(); // TennisTournament
    let space = JoinFunctionSpace::reduced24();
    let strict = AutoFuzzyJoin::builder()
        .space(space.clone())
        .precision_target(0.95)
        .build()
        .join_values(&task.left, &task.right);
    let loose = AutoFuzzyJoin::builder()
        .space(space)
        .precision_target(0.6)
        .build()
        .join_values(&task.left, &task.right);
    assert!(loose.num_joined() >= strict.num_joined());
}

#[test]
fn disabling_negative_rules_and_union_are_ablatable_via_builder() {
    let task = benchmark_specs(BenchmarkScale::Tiny)[14].generate(); // FootballLeagueSeason
    let space = JoinFunctionSpace::reduced24();
    let full = AutoFuzzyJoin::builder()
        .space(space.clone())
        .build()
        .join_values(&task.left, &task.right);
    let uc = AutoFuzzyJoin::builder()
        .space(space.clone())
        .union_of_configurations(false)
        .build()
        .join_values(&task.left, &task.right);
    let nr = AutoFuzzyJoin::builder()
        .space(space)
        .negative_rules(false)
        .build()
        .join_values(&task.left, &task.right);
    // The single-configuration ablation uses at most one configuration and
    // never exceeds the union's estimated recall.
    assert!(uc.program.configs.len() <= 1);
    assert!(uc.recall_estimate() <= full.recall_estimate() + 1e-9);
    // Removing negative rules can only keep or grow the number of joins.
    assert!(nr.num_joined() >= full.num_joined());
}
