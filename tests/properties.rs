//! Property-based tests over the public API (proptest): distance invariants,
//! blocking guarantees, estimator bounds and metric bounds.

use autofj::block::{block_reference, Blocker, GramIndex, ProbeScratch};
use autofj::core::{AutoFjOptions, AutoFuzzyJoin, NegativeRuleSet};
use autofj::eval::{adjusted_recall, evaluate_assignment, pr_auc, ScoredPrediction};
use autofj::text::{JoinFunctionSpace, PreparedColumn};
use proptest::prelude::*;
use std::sync::Mutex;

/// Strategy: short token-ish strings (letters, digits, spaces).
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9]{1,8}( [A-Za-z0-9]{1,8}){0,5}").unwrap()
}

/// `build_global` mutates process-wide state; the blocking-equivalence
/// property serializes its thread-count sweeps on this lock so concurrent
/// test threads never observe a half-configured pool.
static POOL_LOCK: Mutex<()> = Mutex::new(());

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every join function maps every pair into [0, 1] and is zero on
    /// identical strings.
    #[test]
    fn distances_are_bounded_and_reflexive(a in name_strategy(), b in name_strategy()) {
        let col = PreparedColumn::build(&[a.clone(), b.clone()]);
        for f in JoinFunctionSpace::reduced24().functions() {
            let d = f.distance(&col, 0, 1);
            prop_assert!((0.0..=1.0).contains(&d), "{} -> {d}", f.code());
            let self_d = f.distance(&col, 0, 0);
            prop_assert!(self_d.abs() < 1e-9);
        }
    }

    /// Symmetric distance functions are symmetric (containment hybrids are
    /// excluded by design — they are directional).
    #[test]
    fn non_containment_distances_are_symmetric(a in name_strategy(), b in name_strategy()) {
        let col = PreparedColumn::build(&[a, b]);
        for f in JoinFunctionSpace::reduced24().functions() {
            if f.code().contains("Contain") {
                continue;
            }
            let d1 = f.distance(&col, 0, 1);
            let d2 = f.distance(&col, 1, 0);
            prop_assert!((d1 - d2).abs() < 1e-9, "{} asymmetric: {d1} vs {d2}", f.code());
        }
    }

    /// Blocking always keeps an exact duplicate of the probe record.
    #[test]
    fn blocking_never_drops_exact_matches(
        mut names in proptest::collection::vec(name_strategy(), 5..40),
        pick in 0usize..1000,
    ) {
        names.dedup();
        prop_assume!(names.len() >= 5);
        let probe = names[pick % names.len()].clone();
        let out = Blocker::new().block(&names, std::slice::from_ref(&probe));
        let target = names.iter().position(|n| *n == probe).unwrap();
        prop_assert!(out.left_candidates_of_right[0].contains(&target));
    }

    /// The interned-id blocker (both the raw-string and the prepared-column
    /// entry points) produces candidate lists *identical* to the retained
    /// string-path reference implementation, across random tables, blocking
    /// factors and thread counts.
    #[test]
    fn interned_blocking_matches_string_reference(
        left in proptest::collection::vec(name_strategy(), 1..30),
        right in proptest::collection::vec(name_strategy(), 0..15),
        factor in 0.3f64..3.0,
        threads in 1usize..6,
    ) {
        let expected = block_reference(&left, &right, factor);
        let blocker = Blocker::with_factor(factor);

        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("configure shim pool");
        let fast = blocker.block(&left, &right);
        let all: Vec<&str> = left
            .iter()
            .map(String::as_str)
            .chain(right.iter().map(String::as_str))
            .collect();
        let col = PreparedColumn::build(&all);
        let prepared = blocker.block_prepared(&col, left.len());
        rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .expect("reset shim pool");
        drop(_guard);

        prop_assert_eq!(
            &fast.left_candidates_of_right,
            &expected.left_candidates_of_right
        );
        prop_assert_eq!(
            &fast.left_candidates_of_left,
            &expected.left_candidates_of_left
        );
        prop_assert_eq!(fast.candidates_per_record, expected.candidates_per_record);
        prop_assert_eq!(
            &prepared.left_candidates_of_right,
            &expected.left_candidates_of_right
        );
        prop_assert_eq!(
            &prepared.left_candidates_of_left,
            &expected.left_candidates_of_left
        );
    }

    /// The prefix/length-filtered probe is *exact*: on arbitrary gram-id
    /// sets it returns the same top-k as the retained exhaustive walk, and
    /// every record the exhaustive walk ranks into the top-k is among the
    /// records the filters admitted for exact scoring (the superset
    /// guarantee that makes the filters candidate-count reductions, not
    /// approximations).
    #[test]
    fn filtered_probe_is_exact_and_supersets_unfiltered(
        mut sets in proptest::collection::vec(
            proptest::collection::vec(0u32..60, 0..12), 1..25),
        mut probe in proptest::collection::vec(0u32..60, 0..12),
        k in 1usize..30,
        exclude_pick in proptest::option::of(0usize..1000),
    ) {
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        probe.sort_unstable();
        probe.dedup();
        let index = GramIndex::from_id_sets(&sets, 60);
        let exclude = exclude_pick.map(|p| (p % sets.len()) as u32);
        let mut scratch = ProbeScratch::new(sets.len());

        let unfiltered = index.top_k_unfiltered(&probe, k, exclude, &mut scratch);
        let mut scored = Vec::new();
        let filtered = index.top_k_traced(&probe, k, exclude, &mut scratch, &mut scored);

        prop_assert_eq!(&filtered, &unfiltered);
        for &li in &unfiltered {
            prop_assert!(
                scored.contains(&(li as u32)),
                "unfiltered top-k record {li} was never admitted for exact scoring"
            );
        }
    }

    /// Turning the blocking filters off (the unfiltered reference arm) must
    /// not change the final `JoinResult` at all — across random tables,
    /// blocking factors and thread counts, the two paths serialize
    /// byte-identically.
    #[test]
    fn blocking_filters_never_change_the_join_result(
        left in proptest::collection::vec(name_strategy(), 1..20),
        right in proptest::collection::vec(name_strategy(), 0..10),
        factor in 0.3f64..3.0,
        threads_pick in 0usize..2,
    ) {
        let threads = if threads_pick == 0 { 1 } else { 4 };
        let space = JoinFunctionSpace::reduced24();
        let filtered_opts = AutoFjOptions {
            blocking_factor: factor,
            ..AutoFjOptions::default()
        };
        let unfiltered_opts = AutoFjOptions {
            use_blocking_filters: false,
            ..filtered_opts.clone()
        };

        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("configure shim pool");
        let with_filters =
            autofj::core::join_single_column(&left, &right, &space, &filtered_opts);
        let without_filters =
            autofj::core::join_single_column(&left, &right, &space, &unfiltered_opts);
        rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .expect("reset shim pool");
        drop(_guard);

        let a = serde_json::to_string(&with_filters).expect("serialize");
        let b = serde_json::to_string(&without_filters).expect("serialize");
        prop_assert_eq!(a, b);
    }

    /// The end-to-end joiner never panics on arbitrary inputs and always
    /// produces a consistent result structure.
    #[test]
    fn joiner_is_total_and_consistent(
        left in proptest::collection::vec(name_strategy(), 1..15),
        right in proptest::collection::vec(name_strategy(), 0..10),
    ) {
        let joiner = AutoFuzzyJoin::builder()
            .space(JoinFunctionSpace::reduced24())
            .num_thresholds(8)
            .build();
        let result = joiner.join_values(&left, &right);
        prop_assert_eq!(result.assignment.len(), right.len());
        prop_assert!(result.estimated_precision >= 0.0 && result.estimated_precision <= 1.0);
        prop_assert!(result.num_joined() <= right.len());
        for p in &result.pairs {
            prop_assert!(p.left < left.len());
            prop_assert!(p.right < right.len());
        }
    }

    /// Negative rules never forbid a pair of identical strings and are
    /// symmetric in their arguments.
    #[test]
    fn negative_rules_are_sane(names in proptest::collection::vec(name_strategy(), 2..20)) {
        let rules = NegativeRuleSet::learn_exhaustive(&names);
        for n in &names {
            prop_assert!(!rules.forbids(n, n));
        }
        if names.len() >= 2 {
            prop_assert_eq!(rules.forbids(&names[0], &names[1]), rules.forbids(&names[1], &names[0]));
        }
    }

    /// Evaluation metrics stay in range for arbitrary predictions.
    #[test]
    fn metrics_are_bounded(
        gt in proptest::collection::vec(proptest::option::of(0usize..20), 1..30),
        preds in proptest::collection::vec((0usize..30, 0usize..20, 0.0f64..1.0), 0..40),
    ) {
        let preds: Vec<ScoredPrediction> = preds
            .into_iter()
            .filter(|(r, _, _)| *r < gt.len())
            .map(|(right, left, score)| ScoredPrediction { right, left, score })
            .collect();
        let auc = pr_auc(&preds, &gt);
        prop_assert!((0.0..=1.0).contains(&auc));
        let ar = adjusted_recall(&preds, &gt, 0.9);
        prop_assert!((0.0..=1.0).contains(&ar.recall_relative));
        prop_assert!((0.0..=1.0).contains(&ar.precision));
        let assignment: Vec<Option<usize>> = vec![None; gt.len()];
        let q = evaluate_assignment(&assignment, &gt);
        prop_assert_eq!(q.precision, 1.0);
    }
}
