//! Cross-crate integration tests for the multi-column algorithm
//! (Algorithm 3) on the synthetic Magellan-style datasets.

use autofj::core::{AutoFjOptions, AutoFuzzyJoin};
use autofj::datagen::adversarial::add_random_columns;
use autofj::datagen::MultiColumnDataset;
use autofj::eval::evaluate_assignment;
use autofj::text::JoinFunctionSpace;

fn joiner() -> AutoFuzzyJoin {
    AutoFuzzyJoin::builder()
        .space(JoinFunctionSpace::reduced24())
        .options(AutoFjOptions {
            num_thresholds: 20,
            ..AutoFjOptions::default()
        })
        .build()
}

#[test]
fn multi_column_selects_an_informative_column_on_citations() {
    let task = MultiColumnDataset::DA.generate(0.06, 21);
    let result = joiner().join(&task.left, &task.right);
    assert!(
        result
            .program
            .columns
            .iter()
            .any(|c| task.informative_columns.contains(c)),
        "selected {:?}, informative are {:?}",
        result.program.columns,
        task.informative_columns
    );
    let q = evaluate_assignment(&result.assignment, &task.ground_truth);
    assert!(q.precision >= 0.6, "precision {:.3}", q.precision);
    assert!(q.recall_relative >= 0.3, "recall {:.3}", q.recall_relative);
}

#[test]
fn multi_column_weights_are_normalized_and_positive() {
    let task = MultiColumnDataset::BR.generate(0.06, 5);
    let result = joiner().join(&task.left, &task.right);
    if result.program.columns.is_empty() {
        return;
    }
    let sum: f64 = result.program.column_weights.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "weights sum to {sum}");
    assert!(result.program.column_weights.iter().all(|&w| w > 0.0));
}

#[test]
fn random_columns_are_not_selected() {
    let task = MultiColumnDataset::FZ.generate(0.08, 9);
    let noisy = add_random_columns(&task, 2, 77);
    let result = joiner().join(&noisy.left, &noisy.right);
    for c in &result.program.columns {
        assert!(
            !c.starts_with("random_"),
            "a random column {c} was selected by the forward search"
        );
    }
}

#[test]
fn adding_random_columns_does_not_change_recall_much() {
    let task = MultiColumnDataset::AB.generate(0.06, 3);
    let base = joiner().join(&task.left, &task.right);
    let base_q = evaluate_assignment(&base.assignment, &task.ground_truth);
    let noisy = add_random_columns(&task, 2, 13);
    let with_noise = joiner().join(&noisy.left, &noisy.right);
    let noise_q = evaluate_assignment(&with_noise.assignment, &noisy.ground_truth);
    assert!(
        (noise_q.recall_relative - base_q.recall_relative).abs() <= 0.15,
        "recall moved from {:.3} to {:.3} after adding random columns",
        base_q.recall_relative,
        noise_q.recall_relative
    );
}
