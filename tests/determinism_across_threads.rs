//! Cross-thread-count determinism of the end-to-end pipeline.
//!
//! The execution engine (`shims/rayon`) distributes work over a configurable
//! number of threads but must never change *what* is computed: blocking
//! candidate order, vocabulary ids, greedy tie-breaking and the final
//! `JoinResult` all have to be byte-identical whether the search runs on 1
//! or 64 threads.  These tests pin that contract on seeded datagen tasks.
//!
//! The shim's `ThreadPoolBuilder::build_global` intentionally allows
//! re-configuration within one process (a documented divergence from real
//! rayon), which is what lets one test sweep several thread counts.

use autofj::core::single::join_single_column;
use autofj::core::AutoFjOptions;
use autofj::datagen::{benchmark_specs, BenchmarkScale};
use autofj::text::JoinFunctionSpace;
use std::sync::Mutex;

/// `build_global` mutates process-wide state and libtest runs the tests of
/// this binary concurrently; serializing on this lock keeps each test's
/// configured thread count actually in effect while it measures.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// Serialize the full end-to-end result of a seeded task at a given thread
/// count.
fn joined_at(threads: usize, task_idx: usize) -> String {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .expect("configure shim pool");
    let task = benchmark_specs(BenchmarkScale::Tiny)[task_idx].generate();
    let result = join_single_column(
        &task.left,
        &task.right,
        &JoinFunctionSpace::reduced24(),
        &AutoFjOptions::default(),
    );
    serde_json::to_string(&result).expect("JoinResult serializes")
}

/// Reset the pool override so later tests see the environment default.
fn reset_pool() {
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .expect("reset shim pool");
}

#[test]
fn join_result_is_byte_identical_across_1_2_and_8_threads() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = joined_at(1, 36);
    assert!(
        baseline.contains("\"pairs\""),
        "expected a serialized JoinResult, got {baseline:.60}"
    );
    for threads in [2usize, 8] {
        let got = joined_at(threads, 36);
        assert_eq!(
            got, baseline,
            "JoinResult diverged between 1 and {threads} threads"
        );
    }
    reset_pool();
}

/// End-to-end determinism on the medium-scale (≥ 10k×10k) datagen task that
/// `bench_smoke` measures — the scale where the execution engine actually
/// distributes meaningful work per chunk, so chunk-boundary bugs that a
/// 143×80 task would never expose (uneven final chunks, per-worker scratch
/// reuse in the blocker, interned-id summation order) get caught here.
///
/// Ignored by default: at this scale the pipeline is only reasonable in
/// release mode.  CI runs it on the medium bench leg via
/// `cargo test --release --test determinism_across_threads -- --ignored`.
#[test]
#[ignore = "medium-scale: run with --release ... -- --ignored (CI bench-smoke medium leg)"]
fn medium_datagen_task_is_byte_identical_at_1_and_4_threads() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let task = autofj::datagen::medium_smoke_spec().generate();
    assert!(task.left.len() >= 10_000 && task.right.len() >= 10_000);
    let run_at = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("configure shim pool");
        let result = join_single_column(
            &task.left,
            &task.right,
            &JoinFunctionSpace::reduced24(),
            &AutoFjOptions::default(),
        );
        serde_json::to_string(&result).expect("JoinResult serializes")
    };
    let baseline = run_at(1);
    assert!(baseline.contains("\"pairs\""));
    assert_eq!(
        run_at(4),
        baseline,
        "medium-scale JoinResult diverged between 1 and 4 threads"
    );
    reset_pool();
}

/// The incremental greedy search must be indistinguishable from the retained
/// recompute-from-scratch reference (`run_greedy_reference`) — same selected
/// configurations, same assignment, bit-for-bit the same TP/FP sums — on
/// every input and at every thread count.  Property-style sweep: seeded
/// datagen tasks from structurally different domains × a grid of precision
/// targets × thread counts, comparing the serialized `GreedyOutcome`s (the
/// serialization includes every float, so an ulp of drift fails loudly).
#[test]
fn incremental_greedy_matches_recompute_reference_across_tasks_and_threads() {
    use autofj::core::estimate::Precompute;
    use autofj::core::greedy::{run_greedy, run_greedy_reference};
    use autofj::core::oracle::SingleColumnOracle;

    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for task_idx in [7usize, 21, 36] {
        let task = benchmark_specs(BenchmarkScale::Tiny)[task_idx].generate();
        let space = JoinFunctionSpace::reduced24();
        let oracle = SingleColumnOracle::build(space.functions(), &task.left, &task.right);
        let lr: Vec<Vec<usize>> = (0..task.right.len())
            .map(|_| (0..task.left.len()).collect())
            .collect();
        let ll: Vec<Vec<usize>> = (0..task.left.len())
            .map(|i| (0..task.left.len()).filter(|&j| j != i).collect())
            .collect();
        let mut reference_at_one: Vec<String> = Vec::new();
        for threads in [1usize, 3, 8] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .expect("configure shim pool");
            let pre = Precompute::build(&oracle, &lr, &ll, 25);
            for (ti, tau) in [0.5f64, 0.9, 0.99].into_iter().enumerate() {
                let options = AutoFjOptions {
                    precision_target: tau,
                    ..Default::default()
                };
                let inc = serde_json::to_string(&run_greedy(&pre, &options))
                    .expect("GreedyOutcome serializes");
                let refr = serde_json::to_string(&run_greedy_reference(&pre, &options))
                    .expect("GreedyOutcome serializes");
                assert_eq!(
                    inc, refr,
                    "task {task_idx}, tau {tau}, {threads} threads: \
                     incremental and reference outcomes diverged"
                );
                // And the (equal) outcomes must not depend on the thread
                // count either.
                if threads == 1 {
                    reference_at_one.push(inc);
                } else {
                    assert_eq!(
                        inc, reference_at_one[ti],
                        "task {task_idx}, tau {tau}: outcome differs \
                         between 1 and {threads} threads"
                    );
                }
            }
        }
    }
    reset_pool();
}

#[test]
fn adversarial_task_is_deterministic_at_odd_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A second, structurally different domain, swept at thread counts that
    // do not divide the record counts evenly (uneven final chunks).
    let baseline = joined_at(1, 7);
    for threads in [3usize, 5, 64] {
        assert_eq!(
            joined_at(threads, 7),
            baseline,
            "JoinResult diverged at {threads} threads"
        );
    }
    reset_pool();
}
