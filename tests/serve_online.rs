//! End-to-end tests of the online serving stack: snapshot → TCP server →
//! concurrent clients, including incremental right-table appends.
//!
//! The two contracts pinned here:
//!
//! 1. **Append equivalence** — after any sequence of `Append` requests, the
//!    server's answers equal a from-scratch [`ServingState::from_program`]
//!    rebuild on the concatenated right table, at every thread count.  IDF
//!    token weights span both tables, so this catches any state the append
//!    path forgets to refresh.
//! 2. **Concurrent serving** — many client connections issuing interleaved
//!    single/batch joins against a multi-acceptor server all receive
//!    byte-identical answers, and the epoch/stats counters behave.

use autofj::core::AutoFjOptions;
use autofj::datagen::{benchmark_specs, BenchmarkScale};
use autofj::serve::{Client, Server};
use autofj::store::{ServeMatch, ServingState};
use autofj::text::JoinFunctionSpace;
use std::net::SocketAddr;
use std::sync::Mutex;

/// `build_global` mutates process-wide state and libtest runs the tests of
/// this binary concurrently; thread-count sweeps serialize on this lock.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn reset_pool() {
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .expect("reset shim pool");
}

/// Run `f` against a live server for `state` and return its result.
///
/// The server is shut down even when `f` panics: acceptors block in
/// `accept()` until a `Shutdown` request arrives, and `std::thread::scope`
/// joins them during unwind — without this guard a failing assertion inside
/// `f` would deadlock the test instead of failing it.  `f` must therefore
/// NOT send `Shutdown` itself (the helper owns that), and must drop any
/// clients it opens before returning so the acceptors come back to
/// `accept()`.
fn with_server<R>(
    state: ServingState,
    accept_threads: usize,
    f: impl FnOnce(SocketAddr) -> R,
) -> R {
    let server = Server::bind("127.0.0.1:0", state).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let run = scope.spawn(|| server.run(accept_threads));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        let shutdown = Client::connect(addr).and_then(|mut c| c.shutdown());
        run.join().expect("server scope");
        match result {
            Ok(r) => {
                shutdown.expect("shutdown");
                r
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// The small smoke task (ShoppingMall, ~143×80), shared with `bench_smoke`.
fn small_task() -> (Vec<String>, Vec<String>, String) {
    let task = benchmark_specs(BenchmarkScale::Small)[36].generate();
    (task.left, task.right, task.name)
}

fn match_tuples(matches: &[Option<ServeMatch>]) -> Vec<(usize, usize, u64, u64, usize)> {
    matches
        .iter()
        .enumerate()
        .filter_map(|(r, m)| {
            m.map(|m| {
                (
                    r,
                    m.left,
                    m.distance.to_bits(),
                    m.precision.to_bits(),
                    m.config_index,
                )
            })
        })
        .collect()
}

/// Satellite contract: N appends over the wire, then the server must answer
/// exactly like a from-scratch rebuild on the concatenated right table —
/// checked at 1, 2 and 4 worker threads.
#[test]
fn appended_server_equals_from_scratch_rebuild_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (left, right, _) = small_task();
    let space = JoinFunctionSpace::reduced24();
    let options = AutoFjOptions::default();

    // Learn on a prefix; the remainder arrives online in three appends.
    let initial = &right[..right.len() / 2];
    let appends: Vec<&[String]> = vec![
        &right[right.len() / 2..right.len() / 2 + 10],
        &right[right.len() / 2 + 10..right.len() - 5],
        &right[right.len() - 5..],
    ];
    let (state, result) = ServingState::learn(&left, initial.to_vec().as_slice(), &space, &options);

    let served = with_server(state, 2, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let mut epochs = Vec::new();
        for chunk in &appends {
            let (_, epoch) = client.append(chunk).expect("append");
            epochs.push(epoch);
        }
        assert!(
            epochs.windows(2).all(|w| w[0] < w[1]),
            "epochs must advance: {epochs:?}"
        );
        let stats = client.stats().expect("stats");
        assert_eq!(stats.num_right, right.len());
        client.join_batch(&right).expect("join batch")
    });

    // Reference: rebuild from scratch on the concatenated table with the
    // same learned program.
    let rebuilt = ServingState::from_program(
        &left,
        &right,
        &result.program,
        &options,
        result.estimated_precision,
        result.estimated_recall,
    );
    for threads in [1usize, 2, 4] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("configure shim pool");
        let expected = rebuilt.query_batch(&right);
        assert_eq!(
            match_tuples(&served),
            match_tuples(&expected),
            "served answers diverge from rebuild at {threads} threads"
        );
    }
    reset_pool();
}

/// Concurrent clients on a multi-acceptor server: every connection gets the
/// same byte-identical answers whether it asks record-by-record or in one
/// batch, and the query counter accounts for all of them.
#[test]
fn concurrent_clients_get_identical_answers() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (left, right, _) = small_task();
    let (state, _) = ServingState::learn(
        &left,
        &right,
        &JoinFunctionSpace::reduced24(),
        &AutoFjOptions::default(),
    );
    let expected = state.query_batch(&right);

    const CLIENTS: usize = 6;
    with_server(state, 4, |addr| {
        // Worker threads return their observations instead of asserting so a
        // mismatch is reported from the test thread, after every client has
        // disconnected.
        let mismatches: Vec<String> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let expected = &expected;
                    let right = &right;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut bad = Vec::new();
                        if c % 2 == 0 {
                            // Record-by-record.
                            for (r, record) in right.iter().enumerate() {
                                let got = client.join(record).expect("join");
                                if got != expected[r] {
                                    bad.push(format!("client {c}, record {r}: {got:?}"));
                                }
                            }
                        } else {
                            let got = client.join_batch(right).expect("join batch");
                            if match_tuples(&got) != match_tuples(expected) {
                                bad.push(format!("client {c}: batch diverges"));
                            }
                        }
                        bad
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("client thread"))
                .collect()
        });
        assert!(mismatches.is_empty(), "divergent answers: {mismatches:?}");
        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.queries_served, (CLIENTS * right.len()) as u64);
        assert_eq!(stats.epoch, 1, "no appends happened");
    });
}

/// A garbage request line yields an `Error` response and the connection
/// stays usable; an appended-then-queried record answers exactly like the
/// in-memory append path.
#[test]
fn protocol_errors_do_not_poison_the_connection() {
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let left: Vec<String> = vec![
        "2007 LSU Tigers football team".into(),
        "2008 Wisconsin Badgers football team".into(),
    ];
    let right: Vec<String> = vec!["2007 LSU Tigers football".into()];
    let (state, _) = ServingState::learn(
        &left,
        &right,
        &JoinFunctionSpace::reduced24(),
        &AutoFjOptions::default(),
    );
    let appended = "2008 Wisconsin Badgers futball".to_string();
    // Reference for the post-append query: the same append applied in
    // memory.  Whether the record joins is the learned program's business;
    // the server must simply agree with it.
    let expected = {
        let mut reference = state.clone();
        reference.append_right(std::slice::from_ref(&appended));
        reference.query_batch(std::slice::from_ref(&appended))[0]
    };

    with_server(state, 1, |addr| {
        {
            use std::io::{BufRead, BufReader, Write};
            let mut stream = std::net::TcpStream::connect(addr).expect("connect raw");
            stream.write_all(b"this is not json\n").expect("write");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            assert!(line.contains("Error"), "got: {line}");
            // Same connection still serves real requests.
            stream
                .write_all(b"{\"Join\":{\"record\":\"2007 LSU Tigers football\"}}\n")
                .expect("write join");
            line.clear();
            reader.read_line(&mut line).expect("read join");
            assert!(line.contains("Join"), "got: {line}");
        }
        let mut client = Client::connect(addr).expect("connect");
        let (num_right, epoch) = client
            .append(std::slice::from_ref(&appended))
            .expect("append");
        assert_eq!((num_right, epoch), (2, 2));
        let matched = client.join(&appended).expect("join appended");
        assert_eq!(matched, expected);
    });
}
