//! End-to-end pin of the zero-join edge case at the scenario level.
//!
//! Figure 6(b)'s adversarial setup: `L` and `R` come from unrelated domains,
//! so the only correct program is the one that joins nothing.  The learned
//! program must produce 0 joins, an all-⊥ assignment, and a *finite*
//! estimated precision — the tp + fp ≤ 0 ⇒ precision = 1.0 phantom-precision
//! convention, pinned here end-to-end on the registry's committed scenario.

use autofj::core::single::join_single_column;
use autofj::core::AutoFjOptions;
use autofj::datagen::{scenario_registry, ScenarioData};
use autofj::eval::evaluate_assignment;
use autofj::text::JoinFunctionSpace;

#[test]
fn zero_join_scenario_learns_the_empty_program() {
    let spec = scenario_registry()
        .into_iter()
        .find(|s| s.kind.label() == "zero_join")
        .expect("registry carries a zero-join scenario");
    let ScenarioData::Single(task) = spec.generate() else {
        panic!("zero-join scenario must be single-column");
    };
    assert_eq!(task.num_matches(), 0, "ground truth must be all-⊥");

    let result = join_single_column(
        &task.left,
        &task.right,
        &JoinFunctionSpace::reduced24(),
        &AutoFjOptions::default(),
    );

    assert_eq!(
        result.num_joined(),
        0,
        "unrelated domains must produce zero joins, got {}",
        result.num_joined()
    );
    assert!(result.assignment.iter().all(Option::is_none));
    assert!(
        result.estimated_precision.is_finite(),
        "estimated precision must stay finite on an empty join, got {}",
        result.estimated_precision
    );
    // PR 6's phantom-precision convention: tp + fp ≤ 0 ⇒ precision 1.0.
    assert_eq!(result.estimated_precision, 1.0);

    // The evaluator agrees: an empty assignment against all-⊥ ground truth
    // is vacuously perfect, not NaN.
    let q = evaluate_assignment(&result.assignment, &task.ground_truth);
    assert!(q.precision.is_finite());
    assert!(q.recall_relative.is_finite());
}
