//! Integration tests of the evaluation protocol: AutoFJ and the baselines on
//! the same generated task, scored with adjusted recall and PR-AUC.

use autofj::baselines::{
    train_test_split, Ecm, ExcelLike, FuzzyWuzzy, MagellanRf, PpJoin, SupervisedMatcher,
    UnsupervisedMatcher, ZeroEr,
};
use autofj::core::AutoFuzzyJoin;
use autofj::datagen::{benchmark_specs, BenchmarkScale, SingleColumnTask};
use autofj::eval::{adjusted_recall, evaluate_assignment, pr_auc};
use autofj::text::JoinFunctionSpace;

fn task() -> SingleColumnTask {
    benchmark_specs(BenchmarkScale::Tiny)[36].generate() // ShoppingMall
}

#[test]
fn every_unsupervised_baseline_produces_valid_scored_predictions() {
    let task = task();
    let excel = ExcelLike::default();
    let fw = FuzzyWuzzy;
    let pp = PpJoin::default();
    let ecm = Ecm::default();
    let zeroer = ZeroEr::default();
    let matchers: Vec<&dyn UnsupervisedMatcher> = vec![&excel, &fw, &pp, &ecm, &zeroer];
    for m in matchers {
        let preds = m.predict(&task.left, &task.right);
        assert!(!preds.is_empty(), "{} produced no predictions", m.name());
        for p in &preds {
            assert!(p.right < task.right.len());
            assert!(p.left < task.left.len());
            assert!(p.score.is_finite());
        }
        let auc = pr_auc(&preds, &task.ground_truth);
        assert!((0.0..=1.0).contains(&auc), "{}: auc {auc}", m.name());
        // On this easy task, every baseline should do clearly better than
        // random assignment.
        assert!(auc > 0.2, "{}: PR-AUC {auc} suspiciously low", m.name());
    }
}

#[test]
fn adjusted_recall_protocol_matches_autofj_precision_level() {
    let task = task();
    let result = AutoFuzzyJoin::builder()
        .space(JoinFunctionSpace::reduced24())
        .build()
        .join_values(&task.left, &task.right);
    let q = evaluate_assignment(&result.assignment, &task.ground_truth);
    let preds = ExcelLike::default().predict(&task.left, &task.right);
    let ar = adjusted_recall(&preds, &task.ground_truth, q.precision);
    // The protocol favours the baseline: its reported precision is never
    // above AutoFJ's — unless no threshold reaches a precision that low, in
    // which case the sweep falls back to the join-everything point (an
    // impossible target of -1 forces that same fallback).
    if ar.precision > q.precision + 1e-9 {
        let join_everything = adjusted_recall(&preds, &task.ground_truth, -1.0);
        assert_eq!(
            ar, join_everything,
            "adjusted precision {:.3} exceeds AutoFJ's {:.3} without being the fallback point",
            ar.precision, q.precision
        );
    }
}

#[test]
fn supervised_baseline_with_more_labels_is_not_worse() {
    let task = task();
    let rf = MagellanRf::default();
    let (train_small, _) = train_test_split(task.right.len(), 0.2, 11);
    let (train_large, _) = train_test_split(task.right.len(), 0.7, 11);
    let auc_small = pr_auc(
        &rf.fit_predict(&task.left, &task.right, &task.ground_truth, &train_small, 1),
        &task.ground_truth,
    );
    let auc_large = pr_auc(
        &rf.fit_predict(&task.left, &task.right, &task.ground_truth, &train_large, 1),
        &task.ground_truth,
    );
    assert!(
        auc_large >= auc_small - 0.1,
        "more labels should not hurt much: {auc_small} -> {auc_large}"
    );
}

#[test]
fn autofj_is_competitive_with_the_strongest_unsupervised_baseline() {
    let task = task();
    let result = AutoFuzzyJoin::builder()
        .space(JoinFunctionSpace::reduced24())
        .build()
        .join_values(&task.left, &task.right);
    let q = evaluate_assignment(&result.assignment, &task.ground_truth);
    let preds = ExcelLike::default().predict(&task.left, &task.right);
    let excel = adjusted_recall(&preds, &task.ground_truth, q.precision);
    // The headline qualitative claim of Table 2, on one generated task:
    // AutoFJ's recall at its own precision level is at least comparable to
    // Excel's adjusted recall (allow a small slack for synthetic noise).
    assert!(
        q.recall_relative + 0.1 >= excel.recall_relative,
        "AutoFJ recall {:.3} clearly below Excel adjusted recall {:.3}",
        q.recall_relative,
        excel.recall_relative
    );
}
